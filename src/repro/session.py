"""The :class:`Session` facade: one object, the whole toolchain.

A session binds together the pieces every multi-step workflow needs —
a target platform, a tracer + metrics sink, and policy defaults
(scheduler, lint mode) — and exposes the toolchain verbs as methods:

>>> import repro
>>> s = repro.Session("xeon_x5550_2gpu", trace=True)
>>> result = s.translate(SOURCE)                   # doctest: +SKIP
>>> run = s.run(lambda eng: submit_tiled_dgemm(eng, 1024, 256))
>>> print(s.render_trace())                        # doctest: +SKIP

Every method activates the session's tracer for its own duration, so
spans from the underlying layers nest under one coherent trace without
any global state management by the caller.  A session with ``trace``
left off adds (near) zero overhead: ``self.tracer`` is ``None`` and the
instrumented layers skip their span plumbing entirely.

Used as a context manager, the session installs its tracer for the whole
``with`` block, so *user* code between toolchain calls can open its own
spans via :func:`repro.obs.span`.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.model.platform import Platform
from repro.obs import spans as _obs
from repro.obs.export import (
    chrome_trace,
    render_tree,
    trace_payload,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer

__all__ = ["Session"]


class Session:
    """Toolchain facade bound to one platform, tracer and policy set.

    Parameters
    ----------
    platform:
        Target platform: a :class:`Platform`, the name of a shipped
        catalog descriptor, or ``None`` (methods then require an
        explicit platform argument, or a later :meth:`use`).
    trace:
        ``True`` creates a fresh :class:`~repro.obs.spans.Tracer`; pass
        an existing tracer to join traces across sessions; ``False``
        (default) leaves tracing off.
    scheduler:
        Default scheduling policy for :meth:`run` / :meth:`engine`.
    lint:
        Default lint mode for :meth:`translate` (``off``/``warn``/``strict``).
    registry:
        Optional platform registry: a base URL,
        :class:`~repro.service.async_client.RegistryEndpoint`, a
        :class:`~repro.service.cluster.ClusterMap`, or an existing
        (sync) client object.  Platform refs that are not shipped
        catalog names — registry tags, content digests — then resolve
        through :attr:`registry_client` transparently.
    """

    def __init__(
        self,
        platform: Optional[Union[str, Platform]] = None,
        *,
        trace: Union[bool, Tracer] = False,
        scheduler: str = "dmda",
        lint: str = "warn",
        registry=None,
    ):
        if isinstance(trace, Tracer):
            self.tracer: Optional[Tracer] = trace
        else:
            self.tracer = Tracer() if trace else None
        #: metrics sink: the tracer's registry when tracing, else private
        self.metrics: MetricsRegistry = (
            self.tracer.metrics if self.tracer is not None else MetricsRegistry()
        )
        self.scheduler = scheduler
        self.lint_mode = lint
        #: last engine / result from :meth:`run`, last report from
        #: :meth:`explore` — for post-hoc inspection
        self.last_engine = None
        self.last_result = None
        self.last_exploration = None
        self.last_serving = None
        self.last_interference = None
        self._platform: Optional[Platform] = None
        self._platform_ref: Optional[str] = None
        if isinstance(platform, Platform):
            self._platform = platform
        elif platform is not None:
            self._platform_ref = platform
        self._registry = registry
        self._registry_client = None

    # -- tracer plumbing -----------------------------------------------------
    def _activate(self):
        """Context manager installing this session's tracer (no-op when
        tracing is off *and* no other tracer is active)."""
        return _obs.use_tracer(self.tracer) if self.tracer is not None else _noop()

    def __enter__(self) -> "Session":
        self._cm = self._activate()
        self._cm.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb):
        cm, self._cm = self._cm, None
        return cm.__exit__(exc_type, exc, tb)

    # -- platform ------------------------------------------------------------
    @property
    def registry_client(self):
        """The session's registry client, built lazily from whatever the
        ``registry=`` argument was (URL, endpoint, cluster map, or an
        already-constructed client)."""
        if self._registry is None:
            raise ValueError(
                "Session has no registry: pass registry=... to Session(...)"
            )
        if self._registry_client is None:
            from repro.service import (
                ClusterClient,
                ClusterMap,
                RegistryClient,
                RegistryEndpoint,
            )

            if isinstance(self._registry, ClusterMap):
                self._registry_client = ClusterClient(self._registry)
            elif isinstance(self._registry, (str, RegistryEndpoint)):
                self._registry_client = RegistryClient(self._registry)
            else:
                self._registry_client = self._registry
        return self._registry_client

    def _load_ref(self, ref: str) -> Platform:
        """Catalog name → parsed platform, falling back to the session
        registry for refs the shipped catalog does not know (registry
        tags, content digests, digest prefixes)."""
        from repro.errors import PDLError
        from repro.pdl.catalog import load_platform

        try:
            return load_platform(ref)
        except PDLError:
            if self._registry is None:
                raise
            return self.registry_client.platform(ref)

    @property
    def platform(self) -> Platform:
        """The session's platform, loading the catalog ref (or registry
        ref) on first use."""
        if self._platform is None:
            if self._platform_ref is None:
                raise ValueError(
                    "Session has no platform: pass one to Session(...)"
                    " or call session.use(platform)"
                )
            with self._activate():
                self._platform = self._load_ref(self._platform_ref)
        return self._platform

    def use(self, platform: Union[str, Platform]) -> "Session":
        """Re-point the session at another platform (chainable)."""
        if isinstance(platform, Platform):
            self._platform, self._platform_ref = platform, None
        else:
            self._platform, self._platform_ref = None, platform
        return self

    def _resolve(self, platform: Optional[Union[str, Platform]]) -> Platform:
        if platform is None:
            return self.platform
        if isinstance(platform, Platform):
            return platform
        return self._load_ref(platform)

    # -- toolchain verbs -----------------------------------------------------
    def parse(self, text: Union[str, bytes], **kwargs) -> Platform:
        """Parse PDL text (see :func:`repro.pdl.parse_pdl`) and adopt the
        result as the session platform."""
        from repro.pdl.parser import parse_pdl

        with self._activate():
            self._platform = parse_pdl(text, **kwargs)
            self._platform_ref = None
            return self._platform

    def translate(
        self,
        source: str,
        platform: Optional[Union[str, Platform]] = None,
        *,
        lint: Optional[str] = None,
        **kwargs,
    ):
        """Translate an annotated program for the session platform (see
        :func:`repro.cascabel.driver.translate`)."""
        from repro.cascabel.driver import translate

        with self._activate():
            return translate(
                source,
                self._resolve(platform),
                lint=lint if lint is not None else self.lint_mode,
                **kwargs,
            )

    def preselect(
        self,
        source: str,
        platform: Optional[Union[str, Platform]] = None,
        *,
        filename: str = "<string>",
        with_builtin_variants: bool = True,
        require_fallback: bool = True,
    ):
        """Static variant pre-selection for one program; returns the
        :class:`~repro.cascabel.selection.SelectionReport`."""
        from repro.cascabel.driver import register_builtin_variants
        from repro.cascabel.frontend import parse_program
        from repro.cascabel.repository import TaskRepository
        from repro.cascabel.selection import preselect

        with self._activate():
            target = self._resolve(platform)
            program = parse_program(source, filename=filename)
            repo = TaskRepository()
            repo.register_program(program)
            if with_builtin_variants:
                register_builtin_variants(repo, program)
            return preselect(
                repo, program, target, require_fallback=require_fallback
            )

    def lint(
        self,
        source: Optional[str] = None,
        platform: Optional[Union[str, Platform]] = None,
        *,
        filename: str = "<string>",
    ) -> list:
        """Lint the platform (no ``source``) or a program against the
        platform (Cascabel + cross packs); returns ``LintReport`` list."""
        from repro.analysis.engine import Linter

        with self._activate():
            target = self._resolve(platform)
            linter = Linter()
            if source is None:
                return [linter.lint_platform(target)]
            return [
                linter.lint_program(source, filename=filename),
                linter.lint_cross(
                    source, [(target.name, target)], filename=filename
                ),
            ]

    def analyze_interference(
        self,
        platform: Optional[Union[str, Platform]] = None,
        *,
        nbytes: Optional[float] = None,
        filename: Optional[str] = None,
    ):
        """Whole-platform interference report: contention domains, per-
        domain utilization, the pairwise co-location slowdown matrix,
        and the IFR lint verdict.  Returns the
        :class:`~repro.analysis.interference.InterferenceReport`, kept
        on :attr:`last_interference`."""
        from repro.analysis.interference import (
            DEFAULT_PROBE_BYTES,
            analyze_interference,
        )

        with self._activate():
            report = analyze_interference(
                self._resolve(platform),
                nbytes=nbytes if nbytes is not None else DEFAULT_PROBE_BYTES,
                filename=filename,
            )
            self.last_interference = report
            return report

    def engine(self, **kwargs):
        """A fresh :class:`~repro.runtime.engine.RuntimeEngine` for the
        session platform (session scheduler unless overridden)."""
        from repro.runtime.engine import RuntimeEngine

        kwargs.setdefault("scheduler", self.scheduler)
        with self._activate():
            return RuntimeEngine(self.platform, **kwargs)

    def run(
        self,
        workload: Callable,
        *,
        mode: str = "sim",
        engine: Optional[object] = None,
        **engine_kwargs,
    ):
        """Build an engine, let ``workload(engine)`` submit tasks, run it.

        ``workload`` is any callable taking the engine (e.g.
        ``lambda eng: submit_tiled_dgemm(eng, 1024, 256)``).  Returns the
        :class:`~repro.runtime.trace.RunResult`; the engine used is kept
        on :attr:`last_engine` for harvesting or inspection.
        """
        if mode not in ("sim", "real"):
            raise ValueError(f"mode must be 'sim' or 'real', got {mode!r}")
        with self._activate():
            eng = engine if engine is not None else self.engine(**engine_kwargs)
            workload(eng)
            result = eng.run() if mode == "sim" else eng.run_real()
            self.last_engine = eng
            self.last_result = result
            return result

    def calibrate(
        self,
        *,
        config=None,
        database=None,
        perf_model=None,
        registry=None,
    ):
        """Calibration sweep over the session platform; returns
        ``(TuningDatabase, platform digest)``."""
        from repro.tune.calibrate import calibrate_platform

        with self._activate():
            return calibrate_platform(
                self.platform,
                config=config,
                database=database,
                perf_model=perf_model,
                registry=registry,
            )

    def explore(
        self,
        space="dgemm-default",
        budget="sys-large",
        *,
        workload=None,
        seed: int = 0,
        max_points: Optional[int] = None,
        processes: Optional[int] = None,
        mp_context: Optional[str] = None,
        tuning_path=None,
        vectorized: bool = True,
    ):
        """Design-space exploration: synthesize a platform family under a
        budget, score every candidate, rank the Pareto frontier.

        Unlike the other verbs this does not use the session platform —
        finding platforms is the point.  The session scheduler is the
        default workload policy; the report is kept on
        :attr:`last_exploration`.  See :func:`repro.explore.run_exploration`.
        """
        from repro.explore.score import WorkloadSpec
        from repro.explore.sweep import run_exploration

        if workload is None:
            workload = WorkloadSpec(scheduler=self.scheduler)
        elif isinstance(workload, str):
            workload = WorkloadSpec(name=workload, scheduler=self.scheduler)
        with self._activate():
            report = run_exploration(
                space,
                budget,
                workload=workload,
                seed=seed,
                max_points=max_points,
                processes=processes,
                mp_context=mp_context,
                tuning_path=tuning_path,
                vectorized=vectorized,
            )
            self.last_exploration = report
            return report

    def serve(
        self,
        arrivals=None,
        *,
        config=None,
        tenants=None,
        duration_s: float = 1.0,
        seed: int = 0,
        truth_perf_model=None,
        sched_perf_model=None,
        tuning_database=None,
        registry=None,
    ):
        """Serve a task stream against the session platform's fleet.

        ``arrivals`` is any time-ordered iterable of
        :class:`~repro.serve.request.TaskRequest`; when omitted, a
        synthetic Poisson stream is generated from ``tenants`` (a list of
        :class:`~repro.serve.request.TenantSpec`, default: one
        ``"default"`` tenant) over ``duration_s`` simulated seconds.
        Returns the :class:`~repro.serve.report.ServingReport`, kept on
        :attr:`last_serving`; the engine lands on :attr:`last_engine`.
        """
        from repro.serve.engine import ServeConfig, ServeEngine
        from repro.serve.request import TenantSpec, synthetic_arrivals

        with self._activate():
            if arrivals is None:
                if tenants is None:
                    tenants = [TenantSpec(name="default")]
                arrivals = synthetic_arrivals(
                    tenants, duration_s=duration_s, seed=seed
                )
            if config is None:
                config = ServeConfig()  # serving default: dmda-slo
            engine = ServeEngine(
                self.platform,
                config=config,
                registry=registry,
                truth_perf_model=truth_perf_model,
                sched_perf_model=sched_perf_model,
                tuning_database=tuning_database,
                metrics=self.metrics,
            )
            report = engine.run(arrivals)
            self.last_engine = engine
            self.last_serving = report
            return report

    # -- trace access --------------------------------------------------------
    def _require_tracer(self) -> Tracer:
        if self.tracer is None:
            raise ValueError(
                "Session was created without tracing"
                " (pass trace=True to Session(...))"
            )
        return self.tracer

    def trace_payload(self) -> dict:
        """Deterministic JSON payload of the session trace."""
        return trace_payload(self._require_tracer())

    def chrome_trace(self) -> dict:
        """Chrome trace-event document of the session trace."""
        return chrome_trace(self._require_tracer())

    def write_chrome_trace(self, path) -> str:
        """Write the Chrome trace to ``path``; returns the path."""
        return write_chrome_trace(self._require_tracer(), path)

    def render_trace(self, *, attributes: bool = True) -> str:
        """Compact text tree of the session trace."""
        return render_tree(self._require_tracer(), attributes=attributes)

    # -- report-object conventions -------------------------------------------
    def to_payload(self) -> dict:
        """Session state: platform ref, policies, metrics, trace summary."""
        platform = (
            self._platform.name if self._platform is not None else self._platform_ref
        )
        payload: dict = {
            "platform": platform,
            "scheduler": self.scheduler,
            "lint": self.lint_mode,
            "tracing": self.tracer is not None,
            "registry": self._registry is not None,
            "metrics": self.metrics.to_payload(),
        }
        if self.tracer is not None:
            spans = self.tracer.finished()
            payload["trace"] = {
                "spans": len(spans),
                "trace_ids": sorted({s.trace_id for s in spans}),
            }
        if self.last_result is not None:
            payload["last_run"] = {
                "tasks": self.last_result.task_count,
                "makespan": self.last_result.makespan,
                "diagnostics": list(self.last_result.diagnostics),
            }
        if self.last_exploration is not None:
            payload["last_exploration"] = {
                "stats": dict(sorted(self.last_exploration.stats.items())),
                "fingerprint": self.last_exploration.fingerprint(),
            }
        if self.last_serving is not None:
            payload["last_serving"] = {
                "totals": dict(self.last_serving.totals),
                "fingerprint": self.last_serving.fingerprint(),
            }
        if self.last_interference is not None:
            payload["last_interference"] = {
                "max_slowdown": round(self.last_interference.max_slowdown(), 6),
                "ok": self.last_interference.ok,
                "fingerprint": self.last_interference.fingerprint(),
            }
        return payload

    def fingerprint(self) -> str:
        """Stable sha256 over :meth:`to_payload`."""
        from repro.obs.digest import fingerprint_payload

        return fingerprint_payload(self.to_payload())

    def __repr__(self) -> str:
        platform = (
            self._platform.name if self._platform is not None else self._platform_ref
        )
        return (
            f"Session(platform={platform!r}, scheduler={self.scheduler!r},"
            f" lint={self.lint_mode!r}, tracing={self.tracer is not None})"
        )


class _noop:
    """Stand-in context manager when the session has no tracer."""

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False
