"""Analytic makespan prediction from platform descriptors (paper §II).

One of the PDL's declared usage scenarios is to "support auto-tuners,
schedulers or other tools for program optimization and *performance
prediction*".  This module predicts the makespan of a submitted (not yet
run) task graph directly from descriptor-derived rates — no simulation —
using three classical lower bounds:

``critical path``
    Longest dependency chain, each task at its best-case (fastest
    eligible worker) duration.

``area / throughput``
    Tasks grouped by (kernel, dims); each group's fractional optimum is
    ``count / Σ_w rate_w`` over the workers eligible for that kernel
    (the unrelated-machines area bound, exact for uniform tasks).
    Groups are summed — a deliberate slight over-estimate that stands in
    for inter-group interference.

``transfer``
    Bytes that must cross host↔accelerator links at least once (unique
    read-handle footprints of accelerator-eligible tasks, weighted by the
    accelerator share of throughput) over the aggregate link bandwidth.

The prediction is the max of the bounds; ``compare`` reports accuracy
against a simulated or real run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import PerfModelError
from repro.runtime.engine import RuntimeEngine
from repro.runtime.trace import RunResult

__all__ = ["MakespanPrediction", "predict_engine"]


@dataclass(frozen=True)
class MakespanPrediction:
    """Analytic bounds and the resulting prediction."""

    critical_path_s: float
    area_s: float
    transfer_s: float
    task_count: int
    #: per-(kernel, dims) group sizes, for reports
    groups: dict = field(default_factory=dict)

    @property
    def predicted_s(self) -> float:
        return max(self.critical_path_s, self.area_s, self.transfer_s)

    @property
    def binding_bound(self) -> str:
        best = self.predicted_s
        if best == self.critical_path_s:
            return "critical-path"
        if best == self.area_s:
            return "area"
        return "transfer"

    def compare(self, result: RunResult) -> float:
        """Observed / predicted ratio (1.0 = exact; > 1 = we underestimated)."""
        if self.predicted_s <= 0:
            raise PerfModelError("prediction is non-positive; nothing to compare")
        return result.makespan / self.predicted_s

    def summary(self) -> str:
        return (
            f"predicted {self.predicted_s:.4f} s ({self.binding_bound} bound;"
            f" cp={self.critical_path_s:.4f}, area={self.area_s:.4f},"
            f" transfer={self.transfer_s:.4f}; {self.task_count} tasks)"
        )


def predict_engine(engine: RuntimeEngine) -> MakespanPrediction:
    """Predict the makespan of the tasks currently submitted to ``engine``.

    Uses only the engine's descriptor-derived cost models; the engine must
    not have run yet (prediction is a pre-execution tool).
    """
    tasks = engine._tasks
    if not tasks:
        raise PerfModelError("no tasks submitted; nothing to predict")

    # --- per-task best/eligible durations --------------------------------
    best_time: dict[int, float] = {}
    eligible_rates: dict[tuple, float] = {}
    group_counts: dict[tuple, int] = {}
    group_best: dict[tuple, float] = {}
    accel_eligible_bytes = 0.0
    seen_handles: set[int] = set()

    for task in tasks:
        key = (task.kernel, task.dims)
        group_counts[key] = group_counts.get(key, 0) + 1
        times = []
        for worker in engine.workers:
            if engine.registry.get(task.kernel).supports(worker.architecture):
                times.append(engine.exec_estimate(task, worker))
        if not times:
            raise PerfModelError(
                f"task {task.tag}: no eligible worker for prediction"
            )
        best = min(times)
        best_time[task.id] = best
        group_best[key] = min(group_best.get(key, math.inf), best)
        if key not in eligible_rates:
            rate = 0.0
            for worker in engine.workers:
                if engine.registry.get(task.kernel).supports(worker.architecture):
                    rate += 1.0 / engine.exec_estimate(task, worker)
            eligible_rates[key] = rate
        # unique read footprint of tasks that accelerators could take
        accel = any(
            w.memory_node != 0
            and engine.registry.get(task.kernel).supports(w.architecture)
            for w in engine.workers
        )
        if accel:
            for access in task.accesses:
                if access.mode.reads and access.handle.id not in seen_handles:
                    seen_handles.add(access.handle.id)
                    accel_eligible_bytes += access.handle.nbytes

    # --- critical path ------------------------------------------------------
    # tasks are stored in submission order; dependencies always point
    # backwards, so one forward pass computes longest paths
    longest: dict[int, float] = {}
    by_id = {t.id: t for t in tasks}
    cp = 0.0
    for task in tasks:
        start = 0.0
        for dep in task.depends_on:
            start = max(start, longest.get(dep, 0.0))
        finish = start + best_time[task.id]
        longest[task.id] = finish
        cp = max(cp, finish)

    # --- area bound --------------------------------------------------------------
    area = 0.0
    for key, count in group_counts.items():
        rate = eligible_rates[key]
        if rate <= 0:
            raise PerfModelError(f"group {key}: zero aggregate rate")
        area += count / rate

    # --- transfer bound -----------------------------------------------------------
    transfer = 0.0
    accel_workers = [w for w in engine.workers if w.memory_node != 0]
    if accel_workers and accel_eligible_bytes:
        # accelerator share of total throughput decides how much input
        # realistically crosses the links; aggregate the distinct links
        total_rate = sum(eligible_rates.values())
        accel_rate = 0.0
        for key in eligible_rates:
            kernel, dims = key
            for w in accel_workers:
                if engine.registry.get(kernel).supports(w.architecture):
                    sample = next(
                        t for t in tasks if (t.kernel, t.dims) == key
                    )
                    accel_rate += 1.0 / engine.exec_estimate(sample, w)
        share = min(1.0, accel_rate / total_rate) if total_rate else 0.0
        link_bw = 0.0
        seen_links = set()
        for w in accel_workers:
            route = engine.transfer_model.route(
                engine.node_anchor[0], w.entity_id
            )
            for link in route.links:
                if link.id not in seen_links:
                    seen_links.add(link.id)
                    link_bw += (
                        link.bandwidth_bytes_per_s
                        if link.bandwidth_bytes_per_s is not None
                        else 1024.0**3
                    )
        if link_bw > 0:
            transfer = accel_eligible_bytes * share / link_bw

    return MakespanPrediction(
        critical_path_s=cp,
        area_s=area,
        transfer_s=transfer,
        task_count=len(tasks),
        groups={f"{k[0]}{list(k[1]) if k[1] else ''}": c
                for k, c in group_counts.items()},
    )
