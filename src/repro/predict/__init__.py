"""Descriptor-driven performance prediction (paper §II usage scenario)."""

from repro.predict.bounds import MakespanPrediction, predict_engine

__all__ = ["MakespanPrediction", "predict_engine"]
