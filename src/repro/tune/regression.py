"""Log-log regression / interpolation over timing samples.

Kernel execution time over problem size is very close to a power law
(``t = a · x^b``; DGEMM: b ≈ 1 in flops, vector kernels: b ≈ 1 in
bytes), so — like StarPU's ``STARPU_REGRESSION_BASED`` models — we fit a
straight line in log-log space with ordinary least squares:

    ``log t = b · log x + log a``

Exact size-grid hits short-circuit to the sample mean of that size
(StarPU's ``STARPU_HISTORY_BASED`` behaviour); sizes off the grid use
the fitted power law.  With a single distinct size on record the
exponent is indeterminate; we fall back to linear scaling through the
measured point (work-proportional time, the safest default for the
kernels modeled here).

Pure stdlib math — the samples are few, the fit is closed-form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import TuningError
from repro.tune.database import TimingSample

__all__ = ["PowerLawFit", "HistoryCurve", "fit_power_law", "build_curve"]

#: relative tolerance for "this query size was measured exactly"
_EXACT_RTOL = 1e-6


@dataclass(frozen=True)
class PowerLawFit:
    """``t = coefficient · x ** exponent`` fitted in log-log space."""

    coefficient: float
    exponent: float
    n_points: int
    #: mean squared residual in log space (0.0 for <= 2 distinct points)
    residual: float = 0.0

    def predict(self, x: float) -> float:
        if x <= 0.0:
            raise TuningError(f"power-law prediction needs x > 0, got {x!r}")
        return self.coefficient * x**self.exponent


def fit_power_law(points: Sequence[tuple[float, float]]) -> PowerLawFit:
    """Least-squares power-law fit through ``(x, t)`` measurement points.

    One distinct abscissa degenerates to linear scaling through the mean
    of its measurements (exponent 1.0).
    """
    cleaned = [(x, t) for x, t in points if x > 0.0 and t > 0.0]
    if not cleaned:
        raise TuningError("cannot fit a power law through zero usable points")
    xs = sorted({x for x, _ in cleaned})
    if len(xs) == 1:
        x0 = xs[0]
        t_mean = sum(t for _, t in cleaned) / len(cleaned)
        return PowerLawFit(
            coefficient=t_mean / x0, exponent=1.0, n_points=len(cleaned)
        )
    logs = [(math.log(x), math.log(t)) for x, t in cleaned]
    n = len(logs)
    mean_lx = sum(lx for lx, _ in logs) / n
    mean_lt = sum(lt for _, lt in logs) / n
    sxx = sum((lx - mean_lx) ** 2 for lx, _ in logs)
    sxt = sum((lx - mean_lx) * (lt - mean_lt) for lx, lt in logs)
    exponent = sxt / sxx
    intercept = mean_lt - exponent * mean_lx
    residual = (
        sum((lt - (exponent * lx + intercept)) ** 2 for lx, lt in logs) / n
    )
    return PowerLawFit(
        coefficient=math.exp(intercept),
        exponent=exponent,
        n_points=n,
        residual=residual,
    )


class HistoryCurve:
    """Prediction curve for one (kernel, PU) pair.

    Combines an exact-size table (mean of samples sharing one size) with
    a :class:`PowerLawFit` for off-grid sizes.
    """

    def __init__(self, samples: Sequence[TimingSample]):
        if not samples:
            raise TuningError("HistoryCurve needs at least one sample")
        buckets: dict[float, list[float]] = {}
        for sample in samples:
            buckets.setdefault(sample.work, []).append(sample.seconds)
        #: size (flops + bytes) -> mean measured seconds
        self.table: dict[float, float] = {
            x: sum(ts) / len(ts) for x, ts in buckets.items()
        }
        self.fit = fit_power_law(
            [(x, t) for x, t in self.table.items()]
        )
        self.n_samples = len(samples)

    def predict(self, x: float) -> float:
        """Seconds for work amount ``x`` (exact hit first, fit second)."""
        exact = self.lookup_exact(x)
        if exact is not None:
            return exact
        return self.fit.predict(x)

    def lookup_exact(self, x: float) -> Optional[float]:
        for measured_x, seconds in self.table.items():
            if math.isclose(measured_x, x, rel_tol=_EXACT_RTOL):
                return seconds
        return None

    @property
    def sizes(self) -> list[float]:
        return sorted(self.table)

    def __repr__(self) -> str:
        return (
            f"HistoryCurve(sizes={len(self.table)},"
            f" samples={self.n_samples},"
            f" exponent={self.fit.exponent:.3f})"
        )


def build_curve(samples: Sequence[TimingSample]) -> Optional[HistoryCurve]:
    """A :class:`HistoryCurve` over ``samples``, or None when empty."""
    if not samples:
        return None
    return HistoryCurve(samples)
