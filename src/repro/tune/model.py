"""History-based and ground-truth performance models.

:class:`HistoryPerfModel` is the measurement-driven counterpart of the
analytic :class:`~repro.perf.models.PerfModel` (StarPU's history-based
models, AMTHA's measured per-core times): estimates come from
:class:`~repro.tune.regression.HistoryCurve` fits over the samples of a
:class:`~repro.tune.database.TuningDatabase`, falling back to the
analytic model where no history exists.  It is a drop-in ``PerfModel``:
the dmda scheduler (through the engine's ``sched_perf_model``) and
Cascabel's prediction annotations consume it unchanged.

:class:`GroundTruthPerfModel` wraps the analytic model with per-PU speed
factors.  It plays the role of the *actual hardware* in simulation
experiments: a descriptor may claim 168 GFLOP/s while the real device
sustains a quarter of that (thermal throttling, driver overhead, an
optimistic datasheet).  Calibration measures the truth; the history
model learns it; schedulers driven by history then beat schedulers
driven by the descriptor's optimism.
"""

from __future__ import annotations

from typing import Optional

from repro.model.entities import ProcessingUnit
from repro.perf.models import PerfModel
from repro.perf.transfer import TransferModel
from repro.tune.database import TuningDatabase
from repro.tune.regression import HistoryCurve, build_curve

__all__ = ["HistoryPerfModel", "GroundTruthPerfModel"]

#: bytes per double, mirrored from :mod:`repro.kernels.blas`
_DOUBLE_BYTES = 8.0


class HistoryPerfModel(PerfModel):
    """Perf model answering from measured history, analytic as fallback.

    Parameters
    ----------
    database:
        The sample store to answer from.
    digest:
        Platform content digest selecting the profile inside ``database``.
    blend:
        Weight of the historical prediction in ``[0, 1]``; the analytic
        estimate contributes ``1 - blend``.  ``1.0`` (default) trusts
        measurements entirely, ``0.0`` degenerates to the analytic model.
    """

    def __init__(
        self,
        database: TuningDatabase,
        digest: str,
        *,
        blend: float = 1.0,
    ):
        super().__init__()
        if not 0.0 <= blend <= 1.0:
            from repro.errors import TuningError

            raise TuningError(f"blend must be within [0, 1], got {blend!r}")
        self.database = database
        self.digest = digest
        self.blend = blend
        #: (kernel, key) -> HistoryCurve | None; key is a PU entity id or
        #: an ``"arch:<architecture>"`` aggregate
        self._curves: dict[tuple[str, str], Optional[HistoryCurve]] = {}

    # -- curve management ----------------------------------------------------
    def curve_for(
        self, kernel: str, pu_id: str, architecture: Optional[str] = None
    ) -> Optional[HistoryCurve]:
        """Best available curve: per-PU first, per-architecture second."""
        curve = self._cached_curve(kernel, pu_id, pu=pu_id)
        if curve is None and architecture is not None:
            curve = self._cached_curve(
                kernel, f"arch:{architecture}", architecture=architecture
            )
        return curve

    def _cached_curve(self, kernel: str, key: str, **query) -> Optional[HistoryCurve]:
        cache_key = (kernel, key)
        if cache_key not in self._curves:
            samples = self.database.samples(self.digest, kernel=kernel, **query)
            self._curves[cache_key] = build_curve(samples)
        return self._curves[cache_key]

    def invalidate(self, pu_id: Optional[str] = None) -> None:
        """Drop fitted curves (and the analytic rate cache)."""
        if pu_id is None:
            self._curves.clear()
        else:
            self._curves = {
                key: curve for key, curve in self._curves.items() if key[1] != pu_id
            }
        super().invalidate(pu_id)

    def reload(
        self,
        database: Optional[TuningDatabase] = None,
        *,
        digest: Optional[str] = None,
        transfer_model: Optional[TransferModel] = None,
    ) -> None:
        """Swap in freshly calibrated data and drop every stale estimate.

        Passing the engine's :class:`TransferModel` also clears its
        memoized routes, so bandwidth changes late-bound into the
        descriptor are observed on the next transfer estimate.
        """
        if database is not None:
            self.database = database
        if digest is not None:
            self.digest = digest
        self.invalidate()
        if transfer_model is not None:
            transfer_model.invalidate_routes()

    # -- estimation ----------------------------------------------------------
    def _analytic(
        self,
        pu: ProcessingUnit,
        *,
        kernel: str,
        flops: float,
        bytes_touched: float,
        dims: Optional[tuple[int, ...]],
    ) -> float:
        """The base model's answer, bypassing this class's overrides.

        ``PerfModel.estimate`` dispatches GEMM-shaped queries through
        ``self.dgemm_time`` — overridden here to route back into
        :meth:`estimate` — so the fallback must pin the base
        implementation explicitly to avoid mutual recursion.
        """
        if kernel.startswith("dgemm") and dims is not None and len(dims) == 3:
            return PerfModel.dgemm_time(self, pu, *dims)
        return PerfModel.estimate(
            self, pu, kernel=kernel, flops=flops, bytes_touched=bytes_touched, dims=dims
        )

    def estimate(
        self,
        pu: ProcessingUnit,
        *,
        kernel: str,
        flops: float = 0.0,
        bytes_touched: float = 0.0,
        dims: Optional[tuple[int, ...]] = None,
    ) -> float:
        curve = self.curve_for(kernel, pu.id, pu.architecture)
        work = flops + bytes_touched
        if curve is None or work <= 0.0:
            return self._analytic(
                pu, kernel=kernel, flops=flops, bytes_touched=bytes_touched, dims=dims
            )
        history = curve.predict(work)
        if self.blend >= 1.0:
            return history
        analytic = self._analytic(
            pu, kernel=kernel, flops=flops, bytes_touched=bytes_touched, dims=dims
        )
        return self.blend * history + (1.0 - self.blend) * analytic

    def dgemm_time(self, pu: ProcessingUnit, m: int, n: int, k: int) -> float:
        """History-backed DGEMM estimate (same footprint as the kernel
        registry's ``dgemm`` definition, so sizes line up with samples)."""
        flops = 2.0 * m * n * k
        nbytes = _DOUBLE_BYTES * (m * k + k * n + 2 * m * n)
        return self.estimate(
            pu, kernel="dgemm", flops=flops, bytes_touched=nbytes, dims=(m, n, k)
        )

    def coverage(self) -> dict[str, list[str]]:
        """kernel → PU entity ids with history (introspection / CLI)."""
        out: dict[str, list[str]] = {}
        for kernel in self.database.kernels(self.digest):
            pus = sorted(
                {
                    s.pu
                    for s in self.database.samples(self.digest, kernel=kernel)
                }
            )
            out[kernel] = pus
        return out

    def __repr__(self) -> str:
        return (
            f"HistoryPerfModel(digest={self.digest[:12]!r},"
            f" samples={self.database.sample_count(self.digest)},"
            f" blend={self.blend})"
        )


class GroundTruthPerfModel(PerfModel):
    """Analytic model distorted by per-PU/per-architecture speed factors.

    ``speed_factors`` maps a PU entity id (``"gpu0"``) or architecture
    (``"gpu"``) to the fraction of its descriptor-claimed speed the
    device actually sustains: ``0.25`` runs 4× slower than the analytic
    model believes, ``1.0`` matches it exactly.  Entity ids take
    precedence over architectures.
    """

    def __init__(self, speed_factors: Optional[dict[str, float]] = None):
        super().__init__()
        self.speed_factors = dict(speed_factors or {})
        for key, factor in self.speed_factors.items():
            if factor <= 0.0:
                from repro.errors import TuningError

                raise TuningError(
                    f"speed factor for {key!r} must be positive, got {factor!r}"
                )

    def factor_for(self, pu: ProcessingUnit) -> float:
        if pu.id in self.speed_factors:
            return self.speed_factors[pu.id]
        arch = pu.architecture
        if arch is not None and arch in self.speed_factors:
            return self.speed_factors[arch]
        return 1.0

    def estimate(self, pu: ProcessingUnit, **kwargs) -> float:
        # the base class routes GEMM-shaped queries through
        # ``self.dgemm_time`` — already overridden below — so dividing
        # here too would distort that path twice
        dims = kwargs.get("dims")
        if (
            kwargs.get("kernel", "").startswith("dgemm")
            and dims is not None
            and len(dims) == 3
        ):
            return self.dgemm_time(pu, *dims)
        return super().estimate(pu, **kwargs) / self.factor_for(pu)

    def dgemm_time(self, pu: ProcessingUnit, m: int, n: int, k: int) -> float:
        return super().dgemm_time(pu, m, n, k) / self.factor_for(pu)

    def bandwidth_bound_time(self, pu: ProcessingUnit, nbytes: float) -> float:
        return super().bandwidth_bound_time(pu, nbytes) / self.factor_for(pu)

    def flops_bound_time(self, pu: ProcessingUnit, flops: float) -> float:
        return super().flops_bound_time(pu, flops) / self.factor_for(pu)

    def __repr__(self) -> str:
        return f"GroundTruthPerfModel({self.speed_factors!r})"
