"""Calibration harness: micro-experiments that populate the tuning DB.

The harness runs one tiny task graph per (kernel × PU class × size) on
the simulated runtime with a *pinned* scheduler, so each measurement
exercises exactly one worker lane — the AMTHA recipe of measuring every
task type on every core class.  Measured task durations and transfer
times land in a :class:`~repro.tune.database.TuningDatabase` keyed by
the platform's content digest.

The same ingestion path (:func:`harvest_run`) also accepts *production*
runs: any finished :class:`~repro.runtime.trace.RunResult` can be folded
into the database, so real workloads keep refining the history models —
StarPU's feedback loop.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import TuningError
from repro.kernels.registry import KernelRegistry, default_kernel_registry
from repro.model.platform import Platform
from repro.obs import spans as _obs
from repro.pdl.catalog import content_digest
from repro.pdl.writer import write_pdl
from repro.perf.models import PerfModel
from repro.runtime.engine import RuntimeEngine
from repro.runtime.schedulers import Scheduler
from repro.runtime.tasks import RuntimeTask
from repro.runtime.trace import RunResult
from repro.runtime.workers import WorkerContext
from repro.tune.database import TimingSample, TransferSample, TuningDatabase

__all__ = [
    "PinnedScheduler",
    "CalibrationConfig",
    "Calibrator",
    "calibrate_platform",
    "harvest_run",
    "dims_for",
]

#: GEMM-shaped kernels take (m, n, k) dims
_GEMM_KERNELS = ("dgemm", "dgemm_nt")
#: tile kernels take a single (n,) edge length
_TILE_KERNELS = ("dpotrf", "dtrsm", "dsyrk")


def dims_for(kernel: str, size: int) -> tuple[int, ...]:
    """Canonical dims tuple for one size-grid entry.

    GEMM-shaped kernels get a cubic ``(s, s, s)`` problem, tile kernels
    an ``(s,)`` edge, and vector kernels ``(s²,)`` elements (a bare
    ``s``-element vector would be too small to resolve on the grid used
    for matrix kernels).
    """
    if kernel in _GEMM_KERNELS:
        return (size, size, size)
    if kernel in _TILE_KERNELS:
        return (size,)
    return (size * size,)


def _handle_shape(kernel: str, dims: tuple[int, ...]) -> tuple[int, ...]:
    """Shape of the single micro-benchmark operand (sets transfer bytes)."""
    if kernel in _GEMM_KERNELS:
        return (dims[0], dims[1])
    if kernel in _TILE_KERNELS:
        return (dims[0], dims[0])
    return (dims[0],)


class PinnedScheduler(Scheduler):
    """Hand every task to one designated worker lane (measurement rig).

    Not a production policy: it exists so a calibration run isolates a
    single PU class with zero placement interference.
    """

    name = "pinned"

    def __init__(self, instance_id: str):
        super().__init__()
        self.instance_id = instance_id

    def attach(self, workers: list[WorkerContext], cost) -> None:
        if not any(w.instance_id == self.instance_id for w in workers):
            raise TuningError(
                f"PinnedScheduler: no worker lane {self.instance_id!r}"
                f" (lanes: {[w.instance_id for w in workers]})"
            )
        super().attach(workers, cost)

    def reset(self) -> None:
        self._queue: deque[RuntimeTask] = deque()

    def task_ready(self, task: RuntimeTask, now: float) -> None:
        self._queue.append(task)

    def next_task(self, worker: WorkerContext, now: float) -> Optional[RuntimeTask]:
        if worker.instance_id != self.instance_id or not self._queue:
            return None
        return self._queue.popleft()

    def peek(self, worker: WorkerContext) -> Optional[RuntimeTask]:
        if worker.instance_id != self.instance_id or not self._queue:
            return None
        return self._queue[0]

    def pending_count(self) -> int:
        return len(self._queue)


@dataclass(frozen=True)
class CalibrationConfig:
    """Knobs of one calibration sweep."""

    #: kernel interfaces to measure
    kernels: tuple[str, ...] = ("dgemm",)
    #: size grid (interpreted per kernel family by :func:`dims_for`)
    sizes: tuple[int, ...] = (128, 256, 512, 1024)
    #: independent repetitions per point
    repeats: int = 3
    #: relative Gaussian measurement noise (0 = deterministic)
    noise: float = 0.0
    #: RNG seed for the noise model
    seed: int = 7

    def __post_init__(self):
        if self.repeats < 1:
            raise TuningError(f"repeats must be >= 1, got {self.repeats}")
        if self.noise < 0.0:
            raise TuningError(f"noise must be >= 0, got {self.noise}")
        if not self.kernels or not self.sizes:
            raise TuningError("calibration needs at least one kernel and one size")


def harvest_run(
    engine: RuntimeEngine,
    result: RunResult,
    database: TuningDatabase,
    *,
    digest: Optional[str] = None,
    source: str = "harvest",
    jitter: Optional[Callable[[float], float]] = None,
) -> int:
    """Fold a finished run's trace into ``database``; returns #samples.

    Works for calibration micro-runs and production runs alike: task
    durations become :class:`TimingSample` records (keyed by the Worker
    *entity*, so quantity-expanded lanes share one history) and transfer
    records become :class:`TransferSample` entries.
    """
    if digest is None:
        digest = content_digest(write_pdl(engine.platform))
    name = engine.platform.name
    tasks_by_id = {t.id: t for t in engine._tasks}
    workers = {w.instance_id: w for w in engine.workers}
    recorded = 0
    for tt in result.trace.tasks:
        worker = workers.get(tt.worker_id)
        task = tasks_by_id.get(tt.task_id)
        if worker is None or task is None:
            continue
        seconds = tt.duration
        if seconds <= 0.0:
            continue
        if jitter is not None:
            seconds = jitter(seconds)
        dims = task.dims
        if dims is None:
            dims = task.accesses[0].handle.shape
        kernel_def = engine.registry.get(tt.kernel)
        database.record(
            digest,
            TimingSample(
                kernel=tt.kernel,
                pu=worker.entity_id,
                architecture=worker.architecture,
                dims=tuple(dims),
                flops=kernel_def.flops(dims),
                bytes_touched=kernel_def.bytes_touched(dims),
                seconds=seconds,
                source=source,
            ),
            platform_name=name,
        )
        recorded += 1
    for tr in result.trace.transfers:
        seconds = tr.end - tr.start
        if seconds <= 0.0:
            continue
        database.record_transfer(
            digest,
            TransferSample(
                src=engine.node_anchor[tr.src_node],
                dst=engine.node_anchor[tr.dst_node],
                nbytes=float(tr.nbytes),
                seconds=seconds,
                source=source,
            ),
            platform_name=name,
        )
    return recorded


class Calibrator:
    """Runs the micro-experiment sweep for one platform.

    ``perf_model`` is the model that *generates* the simulated ground
    truth (e.g. a :class:`~repro.tune.model.GroundTruthPerfModel` whose
    speed factors encode how the actual device deviates from its
    descriptor).  Samples measure that truth — which is the whole point:
    the history model learns what the hardware does, not what the
    descriptor claims.
    """

    def __init__(
        self,
        platform: Platform,
        *,
        config: Optional[CalibrationConfig] = None,
        perf_model: Optional[PerfModel] = None,
        registry: Optional[KernelRegistry] = None,
    ):
        self.platform = platform
        self.config = config or CalibrationConfig()
        self.perf_model = perf_model
        self.registry = registry if registry is not None else default_kernel_registry()
        self.digest = content_digest(write_pdl(platform))

    def _lanes(self) -> list[WorkerContext]:
        """One representative lane per Worker entity."""
        probe = RuntimeEngine(
            self.platform, scheduler="eager", registry=self.registry
        )
        seen: dict[str, WorkerContext] = {}
        for worker in probe.workers:
            seen.setdefault(worker.entity_id, worker)
        return list(seen.values())

    def run(self, database: Optional[TuningDatabase] = None) -> TuningDatabase:
        """Execute the sweep; returns the (possibly given) database.

        With a tracer active each (lane × kernel) sweep runs under a
        ``tune.sweep`` span beneath one ``tune.calibrate`` root, so a
        calibration trace shows where the measurement time went.
        """
        tracer = _obs.get_tracer()
        if tracer is None:
            return self._run_sweep(database)
        with tracer.span(
            "tune.calibrate",
            platform=self.platform.name,
            digest=self.digest[:12],
            kernels=",".join(self.config.kernels),
        ) as span_:
            db = self._run_sweep(database)
            span_.set(samples=db.sample_count(self.digest))
            return db

    def _run_sweep(self, database: Optional[TuningDatabase]) -> TuningDatabase:
        db = database if database is not None else TuningDatabase()
        cfg = self.config
        rng = random.Random(cfg.seed)

        def jitter(seconds: float) -> float:
            if cfg.noise <= 0.0:
                return seconds
            return seconds * max(0.05, 1.0 + rng.gauss(0.0, cfg.noise))

        measured = 0
        for lane in self._lanes():
            for kernel in cfg.kernels:
                kernel_def = self.registry.get(kernel)
                if not kernel_def.supports(lane.architecture):
                    continue
                with _obs.span(
                    "tune.sweep", lane=lane.entity_id, kernel=kernel
                ):
                    for size in cfg.sizes:
                        dims = dims_for(kernel, size)
                        engine = RuntimeEngine(
                            self.platform,
                            scheduler=PinnedScheduler(lane.instance_id),
                            registry=self.registry,
                            perf_model=self.perf_model,
                        )
                        shape = _handle_shape(kernel, dims)
                        for r in range(cfg.repeats):
                            handle = engine.register(
                                shape=shape, name=f"cal-{kernel}-{size}-{r}"
                            )
                            engine.submit(
                                kernel,
                                [(handle, "rw")],
                                dims=dims,
                                tag=f"cal:{kernel}[{lane.entity_id},{size},{r}]",
                            )
                        result = engine.run(gather_to_home=True)
                        measured += harvest_run(
                            engine,
                            result,
                            db,
                            digest=self.digest,
                            source="microbench",
                            jitter=jitter,
                        )
        if measured == 0:
            raise TuningError(
                f"calibration produced no samples for platform"
                f" {self.platform.name!r} (kernels {list(cfg.kernels)})"
            )
        return db


def calibrate_platform(
    platform: Platform,
    *,
    database: Optional[TuningDatabase] = None,
    config: Optional[CalibrationConfig] = None,
    perf_model: Optional[PerfModel] = None,
    registry: Optional[KernelRegistry] = None,
) -> tuple[TuningDatabase, str]:
    """One-call sweep; returns ``(database, platform digest)``."""
    calibrator = Calibrator(
        platform, config=config, perf_model=perf_model, registry=registry
    )
    return calibrator.run(database), calibrator.digest
