"""``repro-tune`` command line interface.

Subcommands::

    repro-tune calibrate <platform> --db tuning.json [--kernels k1,k2]
               [--sizes 128,256,...] [--repeats N] [--noise F] [--seed N]
    repro-tune show --db tuning.json [--platform REF]
    repro-tune fill <platform> --db tuning.json [-o tuned.xml]
               [--digest D] [--no-add-missing]
    repro-tune export <REF> --db tuning.json --url URL

``<platform>`` is a shipped catalog name or a PDL XML file path.  ``REF``
selects a profile inside the database: a digest, a digest prefix, or a
platform name.  ``export`` publishes the profile to a running registry
service (``repro-registry serve``) so other toolchain installations can
fetch it by platform digest.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.errors import ReproError, TuningError

__all__ = ["main", "build_arg_parser"]

_DEFAULT_URL = "http://127.0.0.1:8787"
_DEFAULT_DB = "tuning.json"


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tune",
        description="Autotuning: calibrate, inspect, late-bind, publish",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def db_arg(p):
        p.add_argument(
            "--db", default=_DEFAULT_DB, help=f"tuning database (default {_DEFAULT_DB})"
        )

    calibrate = sub.add_parser(
        "calibrate", help="run the micro-experiment sweep for a platform"
    )
    calibrate.add_argument("platform", help="catalog name or PDL XML file")
    db_arg(calibrate)
    calibrate.add_argument(
        "--kernels", default="dgemm", help="comma-separated kernel list"
    )
    calibrate.add_argument(
        "--sizes", default="128,256,512,1024", help="comma-separated size grid"
    )
    calibrate.add_argument("--repeats", type=int, default=3)
    calibrate.add_argument(
        "--noise", type=float, default=0.0, help="relative measurement noise"
    )
    calibrate.add_argument("--seed", type=int, default=7)

    show = sub.add_parser("show", help="inspect stored profiles and curves")
    db_arg(show)
    show.add_argument(
        "--platform", help="digest, digest prefix, or platform name", default=None
    )

    fill = sub.add_parser(
        "fill", help="late-bind measured values into a descriptor"
    )
    fill.add_argument("platform", help="catalog name or PDL XML file")
    db_arg(fill)
    fill.add_argument("-o", "--output", help="write tuned XML here (default stdout)")
    fill.add_argument(
        "--digest", help="profile digest (default: the descriptor's own)"
    )
    fill.add_argument(
        "--no-add-missing",
        action="store_true",
        help="only instantiate existing unfixed slots, never append",
    )

    export = sub.add_parser(
        "export", help="publish a profile to a registry service"
    )
    export.add_argument("ref", help="digest, digest prefix, or platform name")
    db_arg(export)
    export.add_argument("--url", default=_DEFAULT_URL, help="registry base URL")
    return parser


def _load_platform(ref: str):
    """Catalog name or XML file path → Platform."""
    from repro.pdl.catalog import available_platforms, load_platform, parse_cached

    if os.path.exists(ref):
        with open(ref, "r", encoding="utf-8") as handle:
            return parse_cached(handle.read())
    if ref in available_platforms():
        return load_platform(ref)
    raise TuningError(
        f"{ref!r} is neither a file nor a catalog platform"
        f" (catalog: {available_platforms()})"
    )


def _resolve_profile(db, ref: str) -> str:
    """Digest, digest prefix, or platform name → full digest."""
    platforms = db.platforms()
    if ref in platforms:
        return ref
    by_prefix = [d for d in platforms if d.startswith(ref)]
    if len(by_prefix) == 1:
        return by_prefix[0]
    if len(by_prefix) > 1:
        raise TuningError(f"ambiguous profile prefix {ref!r}")
    # platform names use dashes, catalog keys underscores — accept both
    wanted = ref.replace("_", "-")
    by_name = [
        d for d, name in platforms.items()
        if name == ref or (name or "").replace("_", "-") == wanted
    ]
    if len(by_name) == 1:
        return by_name[0]
    if len(by_name) > 1:
        raise TuningError(
            f"platform name {ref!r} matches several profiles; use a digest"
        )
    raise TuningError(
        f"no profile for {ref!r}; stored profiles:"
        f" {[(d[:12], n) for d, n in platforms.items()]}"
    )


def _cmd_calibrate(args) -> int:
    from repro.tune.calibrate import CalibrationConfig, Calibrator
    from repro.tune.database import TuningDatabase

    platform = _load_platform(args.platform)
    config = CalibrationConfig(
        kernels=tuple(k.strip() for k in args.kernels.split(",") if k.strip()),
        sizes=tuple(int(s) for s in args.sizes.split(",") if s.strip()),
        repeats=args.repeats,
        noise=args.noise,
        seed=args.seed,
    )
    db = TuningDatabase.load(args.db)
    calibrator = Calibrator(platform, config=config)
    calibrator.run(db)
    db.save(args.db)
    print(
        f"calibrated {platform.name!r} [{calibrator.digest[:12]}]:"
        f" {db.sample_count(calibrator.digest)} samples in {args.db}"
    )
    return 0


def _cmd_show(args) -> int:
    from repro.tune.database import TuningDatabase
    from repro.tune.regression import build_curve

    db = TuningDatabase.load(args.db)
    platforms = db.platforms()
    if not platforms:
        print(f"{args.db}: no profiles")
        return 0
    if args.platform is None:
        for digest, name in platforms.items():
            print(
                f"{digest[:12]}  {name or '?'}"
                f"  samples={db.sample_count(digest)}"
                f" transfers={len(db.transfers(digest))}"
            )
        return 0
    digest = _resolve_profile(db, args.platform)
    print(f"profile {digest[:12]} ({platforms[digest] or '?'}):")
    for kernel in db.kernels(digest):
        for pu in sorted({s.pu for s in db.samples(digest, kernel=kernel)}):
            samples = db.samples(digest, kernel=kernel, pu=pu)
            curve = build_curve(samples)
            print(
                f"  {kernel} @ {pu}: {len(samples)} samples,"
                f" sizes={len(curve.table)},"
                f" t ~ {curve.fit.coefficient:.3e} * x^{curve.fit.exponent:.3f}"
            )
    for t in db.transfers(digest):
        print(
            f"  transfer {t.src}->{t.dst}: {t.nbytes:.3g} B"
            f" in {t.seconds:.3g}s ({t.bandwidth / 1024**3:.2f} GiB/s)"
        )
    return 0


def _cmd_fill(args) -> int:
    from repro.pdl.validator import validate_document
    from repro.pdl.writer import write_pdl
    from repro.tune.database import TuningDatabase
    from repro.tune.latebind import tuned_platform

    platform = _load_platform(args.platform)
    db = TuningDatabase.load(args.db)
    tuned, report = tuned_platform(
        platform,
        db,
        digest=args.digest,
        add_missing=not args.no_add_missing,
    )
    validation = validate_document(tuned)
    if not validation.ok:
        print(validation.summary(), file=sys.stderr)
        return 1
    xml = write_pdl(tuned)
    print(report.summary(), file=sys.stderr)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(xml)
        print(f"wrote tuned descriptor to {args.output}", file=sys.stderr)
    else:
        print(xml, end="")
    return 0


def _cmd_export(args) -> int:
    from repro.service.client import RegistryClient
    from repro.tune.database import TuningDatabase

    db = TuningDatabase.load(args.db)
    digest = _resolve_profile(db, args.ref)
    client = RegistryClient(args.url)
    result = client.publish_profile(digest, db.to_payload(digest))
    print(
        f"published profile {result['digest'][:12]}"
        f" ({result['samples']} samples) to {args.url}"
    )
    return 0


def main(argv=None) -> int:
    args = build_arg_parser().parse_args(argv)
    handlers = {
        "calibrate": _cmd_calibrate,
        "show": _cmd_show,
        "fill": _cmd_fill,
        "export": _cmd_export,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
