"""Autotuning subsystem: measure → model → select.

Closes the loop the paper leaves to "later toolchain stages": the
calibration harness (:mod:`repro.tune.calibrate`) measures kernels per
PU class on the simulated runtime, the persistent
:class:`~repro.tune.database.TuningDatabase` stores the samples keyed by
platform content digest, :class:`~repro.tune.model.HistoryPerfModel`
turns them into scheduler-consumable estimates, and
:mod:`repro.tune.latebind` writes measured figures back into unfixed
descriptor properties — a schema-valid "tuned" PDL document.

Quick tour::

    from repro.pdl.catalog import load_platform
    from repro.tune import Calibrator, HistoryPerfModel, late_bind

    platform = load_platform("xeon_x5550_2gpu")
    calibrator = Calibrator(platform)
    db = calibrator.run()
    tuned = HistoryPerfModel(db, calibrator.digest)
    engine = RuntimeEngine(platform, scheduler="dmda", sched_perf_model=tuned)
"""

from repro.tune.calibrate import (
    CalibrationConfig,
    Calibrator,
    PinnedScheduler,
    calibrate_platform,
    dims_for,
    harvest_run,
)
from repro.tune.database import TimingSample, TransferSample, TuningDatabase
from repro.tune.latebind import (
    BoundProperty,
    LateBindingReport,
    late_bind,
    tuned_platform,
)
from repro.tune.model import GroundTruthPerfModel, HistoryPerfModel
from repro.tune.regression import HistoryCurve, PowerLawFit, fit_power_law

__all__ = [
    "BoundProperty",
    "CalibrationConfig",
    "Calibrator",
    "GroundTruthPerfModel",
    "HistoryCurve",
    "HistoryPerfModel",
    "LateBindingReport",
    "PinnedScheduler",
    "PowerLawFit",
    "TimingSample",
    "TransferSample",
    "TuningDatabase",
    "calibrate_platform",
    "dims_for",
    "fit_power_law",
    "harvest_run",
    "late_bind",
    "tuned_platform",
]
