"""Persistent store of empirical timing samples (the tuning database).

StarPU keeps *history-based performance models* — per (kernel, worker,
size) files of measured execution times that feed its ``dm``/``dmda``
schedulers.  This module is our equivalent: a JSON document on disk
holding :class:`TimingSample` records, keyed by the **platform content
digest** (:func:`repro.pdl.catalog.content_digest` of the canonical
descriptor), so measurements taken against one descriptor version can
never silently be applied to another.

Layout (version 1)::

    {
      "version": 1,
      "platforms": {
        "<sha256 digest>": {
          "platform_name": "xeon_x5550_2gpu",
          "samples":   [ {kernel, pu, architecture, dims, flops,
                          bytes, seconds, source}, ... ],
          "transfers": [ {src, dst, nbytes, seconds, source}, ... ]
        }
      }
    }

``pu`` is the PDL *entity* id of the Worker (``"cpu"``, ``"gpu0"``), not
a lane instance id: quantity-expanded lanes of one Worker entity share
descriptor and hence one timing history.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import TuningError
from repro.obs.digest import fingerprint_payload

__all__ = ["TimingSample", "TransferSample", "TuningDatabase"]

_FORMAT_VERSION = 1

# One lock per store file (process-wide): `save(merge=True)` is a
# read-modify-write of the JSON document, and online serving runs
# `harvest_run` → save from several threads against one path.  Without
# the path lock, two writers interleave load/replace and the slower one
# silently drops the faster one's samples (and both share a ".tmp" name).
_PATH_LOCKS: dict[str, threading.Lock] = {}
_PATH_LOCKS_GUARD = threading.Lock()


def _path_lock(path: str) -> threading.Lock:
    key = os.path.abspath(path)
    with _PATH_LOCKS_GUARD:
        lock = _PATH_LOCKS.get(key)
        if lock is None:
            lock = _PATH_LOCKS[key] = threading.Lock()
        return lock


@dataclass(frozen=True)
class TimingSample:
    """One measured kernel execution."""

    kernel: str
    pu: str  # Worker entity id ("gpu0"), not a lane instance id
    architecture: str
    dims: Optional[tuple[int, ...]]
    flops: float
    bytes_touched: float
    seconds: float
    source: str = "microbench"  # "microbench" | "harvest" | ...

    def __post_init__(self):
        if self.seconds <= 0.0:
            raise TuningError(
                f"sample for {self.kernel!r} on {self.pu!r} has"
                f" non-positive duration {self.seconds!r}"
            )

    @property
    def work(self) -> float:
        """The size metric regressions run over: flops + bytes touched.

        Both terms come from the same kernel definition at record *and*
        query time, so the metric is consistent; summing keeps one axis
        for compute-bound and bandwidth-bound kernels alike.
        """
        return self.flops + self.bytes_touched

    def to_payload(self) -> dict:
        # floats coerced explicitly: kernel definitions may hand back
        # ints, which JSON would serialize differently (2097152 vs
        # 2097152.0) and break payload/fingerprint stability
        return {
            "kernel": self.kernel,
            "pu": self.pu,
            "architecture": self.architecture,
            "dims": list(self.dims) if self.dims is not None else None,
            "flops": float(self.flops),
            "bytes": float(self.bytes_touched),
            "seconds": float(self.seconds),
            "source": self.source,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TimingSample":
        try:
            dims = payload.get("dims")
            return cls(
                kernel=str(payload["kernel"]),
                pu=str(payload["pu"]),
                architecture=str(payload["architecture"]),
                dims=tuple(int(d) for d in dims) if dims is not None else None,
                flops=float(payload["flops"]),
                bytes_touched=float(payload["bytes"]),
                seconds=float(payload["seconds"]),
                source=str(payload.get("source", "microbench")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TuningError(f"malformed timing sample {payload!r}") from exc


@dataclass(frozen=True)
class TransferSample:
    """One measured data transfer between two entity anchors."""

    src: str
    dst: str
    nbytes: float
    seconds: float
    source: str = "microbench"

    def __post_init__(self):
        if self.seconds <= 0.0:
            raise TuningError(
                f"transfer sample {self.src}->{self.dst} has"
                f" non-positive duration {self.seconds!r}"
            )

    @property
    def bandwidth(self) -> float:
        """Effective bytes/second of this transfer."""
        return self.nbytes / self.seconds

    def to_payload(self) -> dict:
        return {
            "src": self.src,
            "dst": self.dst,
            "nbytes": float(self.nbytes),
            "seconds": float(self.seconds),
            "source": self.source,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TransferSample":
        try:
            return cls(
                src=str(payload["src"]),
                dst=str(payload["dst"]),
                nbytes=float(payload["nbytes"]),
                seconds=float(payload["seconds"]),
                source=str(payload.get("source", "microbench")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TuningError(f"malformed transfer sample {payload!r}") from exc


class TuningDatabase:
    """Thread-safe, JSON-persisted collection of timing samples.

    One database may hold profiles for many platforms; every sample is
    filed under the content digest of the descriptor it was measured
    against.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._lock = threading.RLock()
        #: digest -> {"platform_name": str, "samples": [...], "transfers": [...]}
        self._platforms: dict[str, dict] = {}

    # -- recording -----------------------------------------------------------
    def _entry(self, digest: str, platform_name: Optional[str] = None) -> dict:
        entry = self._platforms.get(digest)
        if entry is None:
            entry = {"platform_name": platform_name or "", "samples": [], "transfers": []}
            self._platforms[digest] = entry
        elif platform_name and not entry["platform_name"]:
            entry["platform_name"] = platform_name
        return entry

    def record(
        self,
        digest: str,
        sample: TimingSample,
        *,
        platform_name: Optional[str] = None,
    ) -> None:
        with self._lock:
            self._entry(digest, platform_name)["samples"].append(sample)

    def record_transfer(
        self,
        digest: str,
        sample: TransferSample,
        *,
        platform_name: Optional[str] = None,
    ) -> None:
        with self._lock:
            self._entry(digest, platform_name)["transfers"].append(sample)

    # -- queries -------------------------------------------------------------
    def platforms(self) -> dict[str, str]:
        """digest → platform name for every profiled platform."""
        with self._lock:
            return {d: e["platform_name"] for d, e in sorted(self._platforms.items())}

    def sample_count(self, digest: Optional[str] = None) -> int:
        with self._lock:
            if digest is not None:
                entry = self._platforms.get(digest)
                return len(entry["samples"]) if entry else 0
            return sum(len(e["samples"]) for e in self._platforms.values())

    def samples(
        self,
        digest: str,
        *,
        kernel: Optional[str] = None,
        pu: Optional[str] = None,
        architecture: Optional[str] = None,
    ) -> list[TimingSample]:
        with self._lock:
            entry = self._platforms.get(digest)
            found = list(entry["samples"]) if entry else []
        if kernel is not None:
            found = [s for s in found if s.kernel == kernel]
        if pu is not None:
            found = [s for s in found if s.pu == pu]
        if architecture is not None:
            found = [s for s in found if s.architecture == architecture]
        return found

    def transfers(
        self,
        digest: str,
        *,
        src: Optional[str] = None,
        dst: Optional[str] = None,
    ) -> list[TransferSample]:
        with self._lock:
            entry = self._platforms.get(digest)
            found = list(entry["transfers"]) if entry else []
        if src is not None:
            found = [s for s in found if s.src == src]
        if dst is not None:
            found = [s for s in found if s.dst == dst]
        return found

    def kernels(self, digest: str) -> list[str]:
        """Kernel names with at least one sample for ``digest``, sorted."""
        return sorted({s.kernel for s in self.samples(digest)})

    def pus(self, digest: str) -> list[str]:
        """PU entity ids with at least one sample for ``digest``, sorted."""
        return sorted({s.pu for s in self.samples(digest)})

    def merge(self, other: "TuningDatabase") -> None:
        """Append every sample of ``other`` into this database."""
        with other._lock:
            snapshot = {
                d: (e["platform_name"], list(e["samples"]), list(e["transfers"]))
                for d, e in other._platforms.items()
            }
        with self._lock:
            for digest, (name, samples, transfers) in snapshot.items():
                entry = self._entry(digest, name)
                entry["samples"].extend(samples)
                entry["transfers"].extend(transfers)

    # -- (de)serialization ---------------------------------------------------
    def to_payload(self, digest: Optional[str] = None) -> dict:
        """JSON-ready dict; restrict to one platform with ``digest``."""
        with self._lock:
            items: Iterable[tuple[str, dict]]
            if digest is not None:
                entry = self._platforms.get(digest)
                if entry is None:
                    raise TuningError(
                        f"no tuning profile for platform digest {digest[:12]!r}"
                    )
                items = [(digest, entry)]
            else:
                items = sorted(self._platforms.items())
            return {
                "version": _FORMAT_VERSION,
                "platforms": {
                    d: {
                        "platform_name": e["platform_name"],
                        "samples": [s.to_payload() for s in e["samples"]],
                        "transfers": [t.to_payload() for t in e["transfers"]],
                    }
                    for d, e in items
                },
            }

    @classmethod
    def from_payload(cls, payload: dict, *, path: Optional[str] = None) -> "TuningDatabase":
        if not isinstance(payload, dict):
            raise TuningError("tuning database payload must be a JSON object")
        version = payload.get("version")
        if version != _FORMAT_VERSION:
            raise TuningError(
                f"unsupported tuning database version {version!r}"
                f" (expected {_FORMAT_VERSION})"
            )
        platforms = payload.get("platforms")
        if not isinstance(platforms, dict):
            raise TuningError('tuning database payload lacks a "platforms" map')
        db = cls(path)
        for digest, entry in platforms.items():
            if not isinstance(entry, dict):
                raise TuningError(f"malformed platform entry for {digest!r}")
            name = str(entry.get("platform_name", ""))
            for raw in entry.get("samples", ()):
                db.record(digest, TimingSample.from_payload(raw), platform_name=name)
            for raw in entry.get("transfers", ()):
                db.record_transfer(
                    digest, TransferSample.from_payload(raw), platform_name=name
                )
            # remember even empty profiles, so platform listing round-trips
            with db._lock:
                db._entry(digest, name)
        return db

    def fingerprint(self) -> str:
        """Stable sha256 over the canonical payload (change detection)."""
        return fingerprint_payload(self.to_payload())

    # -- persistence ---------------------------------------------------------
    def save(self, path: Optional[str] = None, *, merge: bool = False) -> str:
        """Write the database to disk (atomically); returns the path used.

        With ``merge=True`` the on-disk document is read back first and
        this database's samples are appended to it, all under a
        process-wide per-path lock — the idiom for concurrent
        ``harvest_run`` writers sharing one store: no writer's samples
        are lost, whichever order they land in.  Plain saves take the
        same lock so a concurrent merge can never interleave with the
        tmp-file replace.  This database object itself is not modified
        by a merged save.
        """
        target = path or self.path
        if target is None:
            raise TuningError("TuningDatabase.save: no path given or configured")
        with _path_lock(target):
            if merge and os.path.exists(target):
                base = TuningDatabase.load(target)
                base.merge(self)
                payload = base.to_payload()
            else:
                payload = self.to_payload()
            tmp = f"{target}.tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, target)
        self.path = target
        return target

    def merge_save(self, path: Optional[str] = None) -> str:
        """Shorthand for :meth:`save` with ``merge=True``."""
        return self.save(path, merge=True)

    @classmethod
    def load(cls, path: str) -> "TuningDatabase":
        """Read a database from disk; a missing file yields an empty one."""
        if not os.path.exists(path):
            return cls(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            raise TuningError(f"cannot read tuning database {path!r}: {exc}") from exc
        return cls.from_payload(payload, path=path)

    def __len__(self) -> int:
        return self.sample_count()

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"TuningDatabase(platforms={len(self._platforms)},"
                f" samples={self.sample_count()})"
            )
