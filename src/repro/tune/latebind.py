"""Late binding: fill unfixed PDL properties from measured data.

The paper (§III-B) reserves **unfixed** property values as slots "to be
filled in by later toolchain stages".  This module is that stage: it
turns tuning-database measurements into descriptor properties —

* per Worker: ``SUSTAINED_GFLOPS_DP`` (measured sustained compute rate)
  and ``MEASURED_STREAM_BANDWIDTH_GBS`` (measured streaming rate, when
  bandwidth-bound kernels were calibrated),
* per Interconnect: ``BANDWIDTH`` (effective link bandwidth observed on
  real transfers) and ``MEASURED_BANDWIDTH`` as an additive note when
  the authored ``BANDWIDTH`` is fixed,

and applies them through :meth:`repro.model.properties.Descriptor.merge`
— existing *unfixed* slots are instantiated in place (keeping their
fixed-ness and authored units), missing names are appended as new
unfixed properties with ``source="repro-tune"`` provenance.  The result
re-serializes through the PDL writer as a schema-valid "tuned"
descriptor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import TuningError
from repro.model.entities import Interconnect, ProcessingUnit
from repro.model.platform import Platform
from repro.model.properties import Descriptor, Property, PropertyValue
from repro.pdl.catalog import content_digest
from repro.pdl.writer import write_pdl
from repro.perf.models import PerfModel
from repro.perf.transfer import TransferModel
from repro.tune.database import TimingSample, TransferSample, TuningDatabase

__all__ = ["BoundProperty", "LateBindingReport", "late_bind", "tuned_platform"]

_SOURCE = "repro-tune"
_GIB = 1024.0**3


@dataclass(frozen=True)
class BoundProperty:
    """One property the late-binding pass touched (or refused to)."""

    owner: str  # e.g. "pu:gpu0" or "ic:pcie0"
    name: str
    old: Optional[str]
    new: str
    action: str  # "instantiated" | "added" | "skipped-fixed"


@dataclass
class LateBindingReport:
    """Outcome of one late-binding pass over a platform."""

    platform_name: str
    digest: str
    entries: list[BoundProperty] = field(default_factory=list)

    @property
    def changed(self) -> int:
        return sum(1 for e in self.entries if e.action != "skipped-fixed")

    def summary(self) -> str:
        lines = [
            f"late binding for {self.platform_name!r}"
            f" [{self.digest[:12]}]: {self.changed} propert(y/ies) bound"
        ]
        for e in self.entries:
            old = f" (was {e.old})" if e.old is not None else ""
            lines.append(f"  [{e.action}] {e.owner} {e.name} = {e.new}{old}")
        return "\n".join(lines)


def _sustained_gflops(samples: list[TimingSample]) -> Optional[float]:
    """Measured sustained GFLOP/s at the largest calibrated size."""
    compute = [s for s in samples if s.flops > 0.0]
    if not compute:
        return None
    best = max(s.work for s in compute)
    top = [s for s in compute if s.work >= best * (1.0 - 1e-9)]
    rates = [s.flops / s.seconds for s in top]
    return sum(rates) / len(rates) / 1e9


def _stream_gbs(samples: list[TimingSample]) -> Optional[float]:
    """Measured streaming GB/s (decimal, matching STREAM_BANDWIDTH_GBS)
    from bandwidth-bound samples (bytes dominate flops)."""
    streaming = [s for s in samples if s.bytes_touched >= s.flops and s.bytes_touched > 0]
    if not streaming:
        return None
    best = max(s.work for s in streaming)
    top = [s for s in streaming if s.work >= best * (1.0 - 1e-9)]
    rates = [s.bytes_touched / s.seconds for s in top]
    return sum(rates) / len(rates) / 1e9


def _link_bandwidth(samples: list[TransferSample]) -> Optional[float]:
    """Effective bytes/s of a link, from its largest observed transfer
    (large transfers amortize latency, approaching raw bandwidth)."""
    if not samples:
        return None
    biggest = max(samples, key=lambda s: s.nbytes)
    peers = [s for s in samples if s.nbytes >= biggest.nbytes * (1.0 - 1e-9)]
    rates = [s.bandwidth for s in peers]
    return sum(rates) / len(rates)


def _apply_overlay(
    descriptor: Descriptor,
    overlay: list[Property],
    *,
    owner: str,
    add_missing: bool,
    report: LateBindingReport,
) -> None:
    """Merge ``overlay`` into ``descriptor``, recording what happened."""
    to_merge: list[Property] = []
    for prop in overlay:
        mine = descriptor.find(prop.name, type_name=prop.type_name)
        if mine is None:
            if add_missing:
                to_merge.append(prop)
                report.entries.append(
                    BoundProperty(owner, prop.name, None, str(prop.value), "added")
                )
            continue
        if mine.fixed:
            report.entries.append(
                BoundProperty(
                    owner, prop.name, str(mine.value), str(prop.value), "skipped-fixed"
                )
            )
            continue
        to_merge.append(prop)
        report.entries.append(
            BoundProperty(
                owner, prop.name, str(mine.value), str(prop.value), "instantiated"
            )
        )
    if to_merge:
        descriptor.merge(Descriptor(to_merge), overwrite_unfixed=True)


def _pu_overlay(samples: list[TimingSample]) -> list[Property]:
    overlay: list[Property] = []
    gflops = _sustained_gflops(samples)
    if gflops is not None:
        overlay.append(
            Property(
                "SUSTAINED_GFLOPS_DP",
                f"{gflops:.6g}",
                fixed=False,
                source=_SOURCE,
            )
        )
    stream = _stream_gbs(samples)
    if stream is not None:
        overlay.append(
            Property(
                "MEASURED_STREAM_BANDWIDTH_GBS",
                f"{stream:.6g}",
                fixed=False,
                source=_SOURCE,
            )
        )
    return overlay


def _ic_overlay(link: Interconnect, bandwidth_bps: float) -> list[Property]:
    gib = bandwidth_bps / _GIB
    value = PropertyValue(f"{gib:.6g}", "GB/s")
    overlay = [Property("BANDWIDTH", value, fixed=False, source=_SOURCE)]
    existing = link.descriptor.find("BANDWIDTH")
    if existing is not None and existing.fixed:
        # the authored figure is immutable; record the measurement beside it
        overlay.append(
            Property(
                "MEASURED_BANDWIDTH",
                PropertyValue(f"{gib:.6g}", "GB/s"),
                fixed=False,
                source=_SOURCE,
            )
        )
    return overlay


def late_bind(
    platform: Platform,
    database: TuningDatabase,
    *,
    digest: Optional[str] = None,
    add_missing: bool = True,
    perf_model: Optional[PerfModel] = None,
    transfer_model: Optional[TransferModel] = None,
) -> LateBindingReport:
    """Instantiate unfixed properties of ``platform`` from measurements.

    ``digest`` selects the tuning profile (defaults to the platform's own
    content digest — pass the calibration-time digest explicitly when the
    platform object was modified since).  ``add_missing=False`` restricts
    the pass to slots that already exist, never appending new properties.

    Mutates ``platform`` in place; use :func:`tuned_platform` for a
    non-destructive variant.  When the live engine's ``perf_model`` /
    ``transfer_model`` are passed, their caches are invalidated so the
    new property values take effect immediately.
    """
    if digest is None:
        digest = content_digest(write_pdl(platform))
    if database.sample_count(digest) == 0 and not database.transfers(digest):
        raise TuningError(
            f"no tuning profile for platform {platform.name!r}"
            f" (digest {digest[:12]}); run calibration first"
        )
    report = LateBindingReport(platform_name=platform.name, digest=digest)

    pus: list[ProcessingUnit] = list(platform.walk())
    for pu in pus:
        samples = database.samples(digest, pu=pu.id)
        overlay = _pu_overlay(samples)
        if overlay:
            _apply_overlay(
                pu.descriptor,
                overlay,
                owner=f"pu:{pu.id}",
                add_missing=add_missing,
                report=report,
            )

    for link in platform.interconnects():
        observed = database.transfers(digest, src=link.from_pu, dst=link.to_pu)
        if link.bidirectional:
            observed += database.transfers(
                digest, src=link.to_pu, dst=link.from_pu
            )
        bandwidth = _link_bandwidth(observed)
        if bandwidth is None:
            continue
        _apply_overlay(
            link.descriptor,
            _ic_overlay(link, bandwidth),
            owner=f"ic:{link.id}",
            add_missing=add_missing,
            report=report,
        )

    # measured values feed both cost models; drop anything stale
    if perf_model is not None:
        perf_model.invalidate()
    if transfer_model is not None:
        transfer_model.invalidate_routes()
    return report


def tuned_platform(
    platform: Platform,
    database: TuningDatabase,
    *,
    digest: Optional[str] = None,
    add_missing: bool = True,
) -> tuple[Platform, LateBindingReport]:
    """Late-bind onto a *copy*; returns ``(tuned copy, report)``."""
    if digest is None:
        digest = content_digest(write_pdl(platform))
    tuned = platform.copy()
    report = late_bind(
        tuned, database, digest=digest, add_missing=add_missing
    )
    return tuned, report
